package live

import (
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/runtime/track"
)

// The bucket mapping must be total, monotone, and self-consistent:
// every value lands in exactly one slot whose upper edge is the largest
// value mapping back to that same slot.
func TestHistSlotMapping(t *testing.T) {
	last := -1
	for _, u := range []uint64{0, 1, 31, 32, 33, 63, 64, 65, 127, 128, 1000,
		1 << 20, 1<<20 + 1, 1 << 40, 1<<63 - 1, 1 << 63, 1<<64 - 1} {
		s := histSlot(u)
		if s < 0 || s >= histSlots {
			t.Fatalf("histSlot(%d) = %d out of range [0,%d)", u, s, histSlots)
		}
		if s < last {
			t.Fatalf("histSlot not monotone at %d: slot %d after %d", u, s, last)
		}
		last = s
	}
	for s := 0; s < histSlots; s++ {
		upper := histSlotUpper(s)
		if upper < 0 {
			continue // top octave's edge overflows int64; histogram input caps at max int64
		}
		if got := histSlot(uint64(upper)); got != s {
			t.Fatalf("histSlot(histSlotUpper(%d)=%d) = %d", s, upper, got)
		}
		if upper+1 > 0 {
			if got := histSlot(uint64(upper + 1)); got != s+1 {
				t.Fatalf("slot %d upper edge %d: next value maps to %d, want %d", s, upper, got, s+1)
			}
		}
	}
}

// Quantiles over a known uniform distribution must land within the
// histogram's published ~3.1% relative error, and max must be exact.
func TestHistogramQuantileAccuracy(t *testing.T) {
	var h histogram
	const n = 10000
	for i := 1; i <= n; i++ {
		h.observe(time.Duration(i) * time.Microsecond)
	}
	var counts [histSlots]int64
	total, sum, max := h.load(&counts)
	if total != n {
		t.Fatalf("count = %d, want %d", total, n)
	}
	if want := int64(n) * (n + 1) / 2 * 1000; sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
	if max != int64(n)*1000 {
		t.Fatalf("max = %d, want %d", max, n*1000)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		got := quantileOf(&counts, total, max, q)
		exact := q * float64(n) * 1000
		if rel := (float64(got) - exact) / exact; rel < -0.001 || rel > 0.04 {
			t.Errorf("q=%v: got %d, exact %.0f (rel err %.4f)", q, got, exact, rel)
		}
	}
	if got := quantileOf(&counts, total, max, 1.0); got != max {
		t.Errorf("q=1 = %d, want exact max %d", got, max)
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	var h histogram
	h.observe(-time.Second) // clock step: clamps to 0, never corrupts
	h.observe(0)
	var counts [histSlots]int64
	total, sum, max := h.load(&counts)
	if total != 2 || sum != 0 || max != 0 {
		t.Fatalf("after negative+zero: count=%d sum=%d max=%d", total, sum, max)
	}
	if counts[0] != 2 {
		t.Fatalf("bucket 0 = %d, want 2", counts[0])
	}
	if q := quantileOf(&counts, 0, 0, 0.5); q != 0 {
		t.Fatalf("quantile of empty = %d", q)
	}
}

// The reservoir must fill to its cap, never exceed it, count every
// offer, and replay byte-identically under the same seed.
func TestReservoirBoundedAndSeeded(t *testing.T) {
	mk := func(seed int64) *reservoir {
		rv := &reservoir{}
		rv.init(32, seed)
		for i := 0; i < 5000; i++ {
			rv.offer(Sample{Class: "move", Object: i, Start: int64(i), DurNs: int64(i % 97)})
		}
		return rv
	}
	rv := mk(7)
	seen, kept := rv.stats()
	if seen != 5000 {
		t.Fatalf("seen = %d, want 5000", seen)
	}
	if kept != 32 {
		t.Fatalf("kept = %d, want cap 32", kept)
	}
	a, b := mk(7).samples(), mk(7).samples()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatal("same seed + same sequence produced different samples")
	}
	c := mk(8).samples()
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Fatal("different seeds produced identical samples (suspicious)")
	}
	for i := 1; i < len(a); i++ {
		if a[i].Start < a[i-1].Start {
			t.Fatal("samples not ordered by start")
		}
	}
}

func TestReservoirKeepsAllWhenUnderCap(t *testing.T) {
	rv := &reservoir{}
	rv.init(64, 1)
	for i := 0; i < 10; i++ {
		rv.offer(Sample{Object: i, Start: int64(10 - i)})
	}
	got := rv.samples()
	if len(got) != 10 {
		t.Fatalf("kept %d, want all 10", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Start < got[i-1].Start {
			t.Fatal("samples not sorted by start")
		}
	}
}

// The disabled sink is the hot-path contract: a nil *Recorder must be
// safe on every method and allocation-free on the per-op path.
func TestNilRecorderSafeAndZeroAlloc(t *testing.T) {
	var r *Recorder
	if r.Enabled() || r.Label() != "" {
		t.Fatal("nil recorder claims to be enabled")
	}
	r.Observe(ClassMove, r.Start(), 1, errors.New("x"))
	r.ObserveDuration(ClassQuery, time.Second, 1, nil)
	r.Publish()
	if s := r.Snapshot(); s.Total.Count != 0 {
		t.Fatal("nil snapshot non-empty")
	}
	if s := r.Latest(); s.Label != "" {
		t.Fatal("nil latest non-empty")
	}
	if r.Samples() != nil {
		t.Fatal("nil samples non-nil")
	}
	if r.Quantile(ClassMove, 0.99) != 0 {
		t.Fatal("nil quantile non-zero")
	}
	if err := r.WriteSummary(nil); err != nil {
		t.Fatal(err)
	}
	var p *Publisher
	p.Stop()

	if allocs := testing.AllocsPerRun(100, func() {
		st := r.Start()
		r.Observe(ClassPublish, st, 3, nil)
		r.ObserveDuration(ClassMove, time.Millisecond, 4, nil)
	}); allocs != 0 {
		t.Fatalf("nil-sink path allocates: %v allocs/op", allocs)
	}
}

func TestRecorderEndToEnd(t *testing.T) {
	r := New("test", Config{SampleSize: 16, Seed: 3})
	if !r.Enabled() || r.Label() != "test" {
		t.Fatal("recorder identity wrong")
	}
	for i := 0; i < 100; i++ {
		r.ObserveDuration(ClassPublish, time.Duration(i+1)*time.Microsecond, i, nil)
		r.ObserveDuration(ClassMove, time.Duration(2*i+1)*time.Microsecond, i, nil)
	}
	r.ObserveDuration(ClassQuery, 5*time.Millisecond, 0, errors.New("timeout"))
	r.ObserveDuration(Class(99), time.Microsecond, 0, nil) // clamps to recovery

	s := r.Snapshot()
	if s.Label != "test" || s.UptimeNs <= 0 {
		t.Fatalf("snapshot header: %+v", s)
	}
	if len(s.Ops) != int(NumClasses) {
		t.Fatalf("ops = %d classes, want %d", len(s.Ops), NumClasses)
	}
	byClass := map[string]OpSnapshot{}
	for _, op := range s.Ops {
		byClass[op.Class] = op
	}
	if byClass["publish"].Count != 100 || byClass["move"].Count != 100 {
		t.Fatalf("publish/move counts: %+v", byClass)
	}
	if byClass["query"].Count != 1 || byClass["query"].Errors != 1 {
		t.Fatalf("query with error: %+v", byClass["query"])
	}
	if byClass["recovery"].Count != 1 {
		t.Fatalf("out-of-range class not clamped to recovery: %+v", byClass["recovery"])
	}
	if s.Total.Count != 202 || s.Total.Errors != 1 {
		t.Fatalf("total aggregate: %+v", s.Total)
	}
	mv := byClass["move"]
	if !(mv.P50Ns <= mv.P90Ns && mv.P90Ns <= mv.P99Ns && mv.P99Ns <= mv.P999Ns && mv.P999Ns <= mv.MaxNs) {
		t.Fatalf("percentiles not monotone: %+v", mv)
	}
	if mv.MaxNs != int64(199*time.Microsecond) {
		t.Fatalf("move max = %d, want exact %d", mv.MaxNs, 199*time.Microsecond)
	}
	if s.Total.MaxNs != int64(5*time.Millisecond) {
		t.Fatalf("total max = %d", s.Total.MaxNs)
	}
	if mean := mv.MeanNs; mean <= 0 || mean > float64(mv.MaxNs) {
		t.Fatalf("move mean = %v", mean)
	}
	if s.SamplesSeen != 202 || s.SamplesKept != 16 {
		t.Fatalf("sampler: seen=%d kept=%d", s.SamplesSeen, s.SamplesKept)
	}
	if q := r.Quantile(ClassMove, 0.5); q <= 0 || q > 199*time.Microsecond {
		t.Fatalf("Quantile = %v", q)
	}

	var sb strings.Builder
	if err := r.WriteSummary(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"live test:", "202 ops", "publish", "move", "query", "p99="} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("summary missing %q:\n%s", want, sb.String())
		}
	}
}

func TestObserveStampPath(t *testing.T) {
	r := New("stamp", Config{})
	st := r.Start()
	time.Sleep(time.Millisecond)
	r.Observe(ClassQuery, st, 7, nil)
	r.Observe(ClassQuery, Stamp{}, 7, nil) // zero stamp: dropped
	s := r.Snapshot()
	q := s.Ops[ClassQuery]
	if q.Count != 1 {
		t.Fatalf("count = %d, want 1 (zero stamp must be dropped)", q.Count)
	}
	if q.MaxNs < int64(time.Millisecond) {
		t.Fatalf("measured %dns for a 1ms sleep", q.MaxNs)
	}
}

func TestPublishAndLatest(t *testing.T) {
	r := New("pub", Config{})
	r.ObserveDuration(ClassMove, time.Microsecond, 0, nil)
	if got := r.Latest().Total.Count; got != 1 {
		t.Fatalf("Latest before any Publish should fall back live: count=%d", got)
	}
	r.Publish()
	r.ObserveDuration(ClassMove, time.Microsecond, 1, nil)
	if got := r.Latest().Total.Count; got != 1 {
		t.Fatalf("Latest after Publish should be the published view: count=%d", got)
	}
	r.Publish()
	if got := r.Latest().Total.Count; got != 2 {
		t.Fatalf("re-Publish did not refresh: count=%d", got)
	}
}

func TestPublisherLifecycle(t *testing.T) {
	r := New("loop", Config{})
	r.ObserveDuration(ClassPublish, time.Microsecond, 0, nil)
	p := r.StartPublisher(time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for r.published.Load() == nil {
		if time.Now().After(deadline) {
			t.Fatal("publisher never published")
		}
		time.Sleep(time.Millisecond)
	}
	p.Stop()
	p.Stop() // idempotent
	if r.published.Load().Total.Count != 1 {
		t.Fatalf("published snapshot: %+v", r.published.Load())
	}
}

func TestPublishExpvar(t *testing.T) {
	r := New("expvar-test", Config{})
	r.ObserveDuration(ClassQuery, time.Microsecond, 0, nil)
	r.Publish()
	r.PublishExpvar()
	v := expvar.Get("live.expvar-test")
	if v == nil {
		t.Fatal("expvar not registered")
	}
	var s Snapshot
	if err := json.Unmarshal([]byte(v.String()), &s); err != nil {
		t.Fatalf("expvar value not JSON: %v", err)
	}
	if s.Label != "expvar-test" || s.Total.Count != 1 {
		t.Fatalf("expvar snapshot: %+v", s)
	}
	// Re-registering the same label repoints, never panics.
	r2 := New("expvar-test", Config{})
	r2.ObserveDuration(ClassQuery, time.Microsecond, 0, nil)
	r2.ObserveDuration(ClassQuery, time.Microsecond, 1, nil)
	r2.Publish()
	r2.PublishExpvar()
	if err := json.Unmarshal([]byte(expvar.Get("live.expvar-test").String()), &s); err != nil {
		t.Fatal(err)
	}
	if s.Total.Count != 2 {
		t.Fatalf("expvar not repointed to new recorder: count=%d", s.Total.Count)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := New("json", Config{SampleSize: 4, Seed: 2})
	r.ObserveDuration(ClassMove, 42*time.Microsecond, 9, errors.New("drop"))
	b, err := MarshalSnapshotJSON(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(b, &s); err != nil {
		t.Fatal(err)
	}
	if s.Label != "json" || s.Total.Count != 1 || s.Total.Errors != 1 || s.SamplesKept != 1 {
		t.Fatalf("round-trip: %+v", s)
	}
	samples := r.Samples()
	if len(samples) != 1 || samples[0].Class != "move" || samples[0].Object != 9 || !samples[0].Err {
		t.Fatalf("samples: %+v", samples)
	}
}

func TestClassString(t *testing.T) {
	for c, want := range map[Class]string{
		ClassPublish: "publish", ClassMove: "move", ClassQuery: "query",
		ClassRecovery: "recovery", Class(-1): "other", NumClasses: "other",
	} {
		if got := c.String(); got != want {
			t.Errorf("Class(%d).String() = %q, want %q", c, got, want)
		}
	}
}

// Concurrent observers across classes plus a snapshotter: exercised so
// the atomics/lock layout shows up under -race if ever run there.
func TestConcurrentObserve(t *testing.T) {
	r := New("conc", Config{SampleSize: 8})
	var g track.Group
	const perG = 500
	for c := Class(0); c < NumClasses; c++ {
		c := c
		g.Go(func() {
			for i := 0; i < perG; i++ {
				r.ObserveDuration(c, time.Duration(i)*time.Nanosecond, i, nil)
			}
		})
	}
	g.Go(func() {
		for i := 0; i < 50; i++ {
			_ = r.Snapshot()
			_ = r.Samples()
		}
	})
	g.Wait()
	s := r.Snapshot()
	if want := int64(perG) * int64(NumClasses); s.Total.Count != want {
		t.Fatalf("total = %d, want %d", s.Total.Count, want)
	}
	if s.SamplesKept > 8 {
		t.Fatalf("reservoir exceeded cap: %d", s.SamplesKept)
	}
}
