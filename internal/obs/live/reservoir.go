package live

import (
	"sort"
	"sync"
)

// Sample is one recorded span kept by the reservoir.
type Sample struct {
	// Class is the operation class name ("publish", "move", ...).
	Class string `json:"class"`
	// Object is the tracked object the op concerned (-1 when none).
	Object int `json:"object"`
	// Start is the span's wall-clock start, Unix nanoseconds.
	Start int64 `json:"start_unix_ns"`
	// DurNs is the span's wall-clock duration in nanoseconds.
	DurNs int64 `json:"dur_ns"`
	// Err records whether the operation returned an error.
	Err bool `json:"err"`
}

// reservoir keeps a uniform random sample of the spans offered to it
// in a fixed-size buffer (Vitter's Algorithm R). Memory is bounded by
// construction: the buffer is allocated once at init and only
// overwritten in place. Replacement decisions come from a seeded
// SplitMix64 stream so two recorders fed the same span sequence with
// the same seed keep byte-identical samples.
type reservoir struct {
	mu   sync.Mutex
	buf  []Sample
	seen int64
	rng  uint64
}

func (rv *reservoir) init(capacity int, seed int64) {
	rv.buf = make([]Sample, 0, capacity)
	rv.rng = uint64(seed)
}

// splitmix64 advances the replacement stream (Steele, Lea & Flood's
// SplitMix64 — one multiply-xorshift round per draw, no allocation).
func (rv *reservoir) splitmix64() uint64 {
	rv.rng += 0x9e3779b97f4a7c15
	z := rv.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// offer considers s for inclusion. The first cap(buf) spans are always
// kept; span number n>cap thereafter replaces a uniformly random slot
// with probability cap/n, so every offered span is equally likely to
// be present at any point.
func (rv *reservoir) offer(s Sample) {
	rv.mu.Lock()
	rv.seen++
	if len(rv.buf) < cap(rv.buf) {
		rv.buf = append(rv.buf, s)
	} else if n := cap(rv.buf); n > 0 {
		if j := rv.splitmix64() % uint64(rv.seen); j < uint64(n) {
			rv.buf[j] = s
		}
	}
	rv.mu.Unlock()
}

// stats returns (spans offered, spans currently held).
func (rv *reservoir) stats() (seen int64, kept int) {
	rv.mu.Lock()
	defer rv.mu.Unlock()
	return rv.seen, len(rv.buf)
}

// samples copies the current contents, ordered by span start for
// stable presentation.
func (rv *reservoir) samples() []Sample {
	rv.mu.Lock()
	out := make([]Sample, len(rv.buf))
	copy(out, rv.buf)
	rv.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Object < out[j].Object
	})
	return out
}
