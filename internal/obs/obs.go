// Package obs is the repository's deterministic observability layer:
// structured spans and events for every directory operation, plus a
// metrics registry of counters, high-watermark gauges, fixed-bucket
// histograms, and indexed series (per-node, per-level).
//
// Determinism contract. Everything obs records is keyed by logical
// identity — operation number, per-span event sequence, metric name —
// and every exporter sorts by that identity before rendering, so the
// exported bytes depend only on the recorded operations, never on
// goroutine scheduling or wall-clock time (the motlint walltime rule
// applies to this package like any other library). Timestamps are
// whatever logical clock the instrumented substrate supplies:
//
//   - internal/core uses its cumulative-cost clock (operations execute
//     instantly under the directory lock; the clock advances by each
//     operation's message cost),
//   - internal/sim uses the simulated time of its event engine,
//   - internal/runtime uses a cost clock advanced per completed
//     operation (exact under sequential replay, approximate when
//     clients race — the identity sort keeps exports stable either
//     way as long as the issue order is deterministic).
//
// Nil-sink fast path. A nil *Recorder is a valid, fully disabled sink:
// every method nil-checks the receiver and returns immediately, so
// instrumented code paths pay one pointer test when observability is
// off (bench_test.go pins this at well under a nanosecond per call).
package obs

import "sync"

// Span kinds — one per directory operation class.
const (
	OpPublish  = "publish"
	OpMove     = "move"
	OpQuery    = "query"
	OpRecovery = "recovery"
)

// Event kinds recorded inside spans.
const (
	EvHop     = "hop"      // one message travel between hosts
	EvStamp   = "stamp"    // DPath entry written at a station
	EvWipe    = "wipe"     // DL/SDL entry (or whole trail) erased
	EvSDL     = "sdl"      // special-parent (SDL) registration touched
	EvLBRoute = "lb-route" // de Bruijn intra-cluster routing surcharge
	EvPeak    = "peak"     // climb met the object's trail (insert peak, query DL hit)
	EvRetry   = "retry"    // chaos retransmission attempt
	EvWait    = "wait"     // operation parked (period gate, stale proxy)
	EvRestart = "restart"  // query re-climbed after losing the trail
	EvAbort   = "abort"    // operation abandoned by the fault layer
)

// Series names shared by the substrates, so cross-substrate reports line
// up column for column.
const (
	// SeriesNodeMsgs counts messages handled per physical node — the
	// traffic-load distribution.
	SeriesNodeMsgs = "node.msgs"
	// SeriesNodeEntries counts directory entries stored per physical
	// node under the configured placement — the §5 storage-load metric.
	SeriesNodeEntries = "node.entries"
	// SeriesLevelHops counts message travels per overlay level.
	SeriesLevelHops = "level.hops"
)

// Event is one annotated point inside a span. Seq orders events within
// their span (assigned at record time, dense from 0), which is what makes
// exports independent of timestamp collisions.
type Event struct {
	Seq   int     `json:"seq"`
	Kind  string  `json:"kind"`
	Level int     `json:"level"`
	Node  int     `json:"node"`
	Cost  float64 `json:"cost"`
	At    float64 `json:"at"`
}

// spanData is the recorder-owned state of one span.
type spanData struct {
	op     uint64
	kind   string
	object int
	start  float64
	end    float64
	done   bool
	events []Event
}

// Recorder collects spans and metrics. A nil Recorder is a disabled
// sink: all methods are safe to call and do nothing. Recorders are safe
// for concurrent use.
type Recorder struct {
	label string

	mu       sync.Mutex
	spans    []spanData
	counters map[string]float64
	gauges   map[string]float64
	hists    map[string]*histogram
	series   map[string][]float64
}

// New returns an enabled recorder. The label names the run in every
// export (the "run" column / Chrome process name).
func New(label string) *Recorder {
	return &Recorder{
		label:    label,
		counters: map[string]float64{},
		gauges:   map[string]float64{},
		hists:    map[string]*histogram{},
		series:   map[string][]float64{},
	}
}

// Enabled reports whether the recorder actually records.
//
//motlint:hotpath
func (r *Recorder) Enabled() bool { return r != nil }

// Label returns the recorder's run label ("" when disabled).
//
//motlint:hotpath
func (r *Recorder) Label() string {
	if r == nil {
		return ""
	}
	return r.label
}

// Span is a value handle onto one recorded span. The zero Span (and any
// Span from a nil Recorder) is inert: Event and End do nothing.
type Span struct {
	r   *Recorder
	idx int
}

// StartSpan opens a span for operation op of the given kind on object at
// logical time at. op is the substrate's operation number; it is the
// primary export sort key, so equal-op spans (e.g. publishes, which some
// substrates do not number) must differ in object or kind.
func (r *Recorder) StartSpan(kind string, op uint64, object int, at float64) Span {
	if r == nil {
		return Span{}
	}
	r.mu.Lock()
	idx := len(r.spans)
	r.spans = append(r.spans, spanData{op: op, kind: kind, object: object, start: at, end: at})
	r.mu.Unlock()
	return Span{r: r, idx: idx}
}

// Active reports whether the span records (false for the zero Span).
//
//motlint:hotpath
func (s Span) Active() bool { return s.r != nil }

// Event appends one annotated event to the span. Level is the overlay
// level involved (-1 when not meaningful), node the physical host, cost
// the message distance attributable to the event (0 for bookkeeping
// events), and at the substrate's logical time.
func (s Span) Event(kind string, level, node int, cost, at float64) {
	if s.r == nil {
		return
	}
	s.r.mu.Lock()
	sp := &s.r.spans[s.idx]
	sp.events = append(sp.events, Event{
		Seq: len(sp.events), Kind: kind, Level: level, Node: node, Cost: cost, At: at,
	})
	s.r.mu.Unlock()
}

// End closes the span at logical time at. Ending twice keeps the later
// time; unended spans export with end == start.
//
//motlint:hotpath
func (s Span) End(at float64) {
	if s.r == nil {
		return
	}
	s.r.mu.Lock()
	sp := &s.r.spans[s.idx]
	sp.end = at
	sp.done = true
	s.r.mu.Unlock()
}

// SpanCount returns the number of spans recorded so far.
//
//motlint:hotpath
func (r *Recorder) SpanCount() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}
