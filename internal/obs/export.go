package obs

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
)

// Exporters. Every format sorts spans by logical identity
// (op, object, kind, start, record order) and renders metrics from the
// name-sorted Snapshot, so the bytes are a pure function of what was
// recorded — the property the Workers=1 vs Workers=N golden test pins.

// spanJSON is the JSONL line layout.
type spanJSON struct {
	Run    string  `json:"run"`
	Op     uint64  `json:"op"`
	Kind   string  `json:"kind"`
	Object int     `json:"object"`
	Start  float64 `json:"start"`
	End    float64 `json:"end"`
	Events []Event `json:"events"`
}

// sortedSpans copies the spans under the lock and orders them by
// logical identity.
func (r *Recorder) sortedSpans() []spanData {
	r.mu.Lock()
	spans := make([]spanData, len(r.spans))
	copy(spans, r.spans)
	r.mu.Unlock()
	order := make([]int, len(spans))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		a, b := spans[order[i]], spans[order[j]]
		if a.op != b.op {
			return a.op < b.op
		}
		if a.object != b.object {
			return a.object < b.object
		}
		if a.kind != b.kind {
			return a.kind < b.kind
		}
		if a.start != b.start {
			return a.start < b.start
		}
		return order[i] < order[j]
	})
	out := make([]spanData, len(spans))
	for i, idx := range order {
		out[i] = spans[idx]
	}
	return out
}

// WriteJSONL writes one JSON object per span (events nested), sorted by
// logical identity. A nil recorder writes nothing.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	return WriteJSONLAll(w, r)
}

// WriteJSONLAll concatenates the JSONL exports of several recorders into
// one stream; each line's "run" field carries its recorder's label.
func WriteJSONLAll(w io.Writer, recs ...*Recorder) error {
	for _, r := range recs {
		if r == nil {
			continue
		}
		for _, sp := range r.sortedSpans() {
			events := sp.events
			if events == nil {
				events = []Event{}
			}
			line, err := json.Marshal(spanJSON{
				Run: r.label, Op: sp.op, Kind: sp.kind, Object: sp.object,
				Start: sp.start, End: sp.end, Events: events,
			})
			if err != nil {
				return err
			}
			if _, err := w.Write(append(line, '\n')); err != nil {
				return err
			}
		}
	}
	return nil
}

// formatFloat renders CSV numbers in the shortest exact form.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteMetricsCSV writes the metrics snapshot as CSV with columns
// run,type,name,key,value: counters and gauges (empty key), histogram
// buckets (key le<bound>, +Inf, sum, count), and series elements (key =
// index). A nil recorder writes only the header.
func (r *Recorder) WriteMetricsCSV(w io.Writer) error {
	return WriteMetricsCSVAll(w, r)
}

// WriteMetricsCSVAll writes one CSV (single header) covering several
// recorders, each row tagged with its recorder's label.
func WriteMetricsCSVAll(w io.Writer, recs ...*Recorder) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"run", "type", "name", "key", "value"}); err != nil {
		return err
	}
	for _, r := range recs {
		if r == nil {
			continue
		}
		snap := r.Snapshot()
		for _, c := range snap.Counters {
			if err := cw.Write([]string{snap.Label, "counter", c.Name, "", formatFloat(c.Value)}); err != nil {
				return err
			}
		}
		for _, g := range snap.Gauges {
			if err := cw.Write([]string{snap.Label, "gauge", g.Name, "", formatFloat(g.Value)}); err != nil {
				return err
			}
		}
		for _, h := range snap.Histograms {
			for i, b := range h.Bounds {
				if err := cw.Write([]string{snap.Label, "hist", h.Name, "le" + formatFloat(b), strconv.FormatInt(h.Counts[i], 10)}); err != nil {
					return err
				}
			}
			rows := [][2]string{
				{"+Inf", strconv.FormatInt(h.Counts[len(h.Bounds)], 10)},
				{"sum", formatFloat(h.Sum)},
				{"count", strconv.FormatInt(h.Count, 10)},
			}
			for _, row := range rows {
				if err := cw.Write([]string{snap.Label, "hist", h.Name, row[0], row[1]}); err != nil {
					return err
				}
			}
		}
		for _, s := range snap.Series {
			for i, v := range s.Values {
				if err := cw.Write([]string{snap.Label, "series", s.Name, strconv.Itoa(i), formatFloat(v)}); err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteText writes a compact human-readable summary: span count,
// counters, gauges, histogram means, and series headline statistics.
func (r *Recorder) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	snap := r.Snapshot()
	if _, err := fmt.Fprintf(w, "obs %s: %d spans\n", snap.Label, snap.Spans); err != nil {
		return err
	}
	for _, c := range snap.Counters {
		if _, err := fmt.Fprintf(w, "  counter %-20s %g\n", c.Name, c.Value); err != nil {
			return err
		}
	}
	for _, g := range snap.Gauges {
		if _, err := fmt.Fprintf(w, "  gauge   %-20s %g\n", g.Name, g.Value); err != nil {
			return err
		}
	}
	for _, h := range snap.Histograms {
		mean := 0.0
		if h.Count > 0 {
			mean = h.Sum / float64(h.Count)
		}
		if _, err := fmt.Fprintf(w, "  hist    %-20s n=%d mean=%.3f\n", h.Name, h.Count, mean); err != nil {
			return err
		}
	}
	for _, s := range snap.Series {
		if _, err := fmt.Fprintf(w, "  series  %-20s len=%d max=%g mean=%.3f nonzero=%d\n",
			s.Name, len(s.Values), s.Max(), s.Mean(), s.NonZero()); err != nil {
			return err
		}
	}
	return nil
}

// Dump prints the WriteText summary to standard output — a debugging
// convenience for REPL-style use; measured paths render through an
// io.Writer. This call is why export.go (and only export.go) sits on
// the printlib file allowlist.
func (r *Recorder) Dump() {
	if r == nil {
		return
	}
	if err := r.WriteText(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "obs: dump: %v\n", err)
	}
}
