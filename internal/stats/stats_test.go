package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.Max != 0 {
		t.Fatalf("empty summary %+v", s)
	}
}

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Fatalf("summary %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-9 {
		t.Fatalf("std %v", s.Std)
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("input mutated")
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 40}, {50, 25}, {-5, 10}, {200, 40},
	}
	for _, c := range cases {
		if got := Percentile(sorted, c.p); got != c.want {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile")
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean")
	}
	if Mean([]float64{2, 4}) != 3 {
		t.Fatal("mean wrong")
	}
}

func TestSummarizeLoad(t *testing.T) {
	load := []int{0, 0, 1, 5, 11, 25}
	ls := SummarizeLoad(load, 10)
	if ls.Nodes != 6 || ls.Total != 42 || ls.Max != 25 {
		t.Fatalf("%+v", ls)
	}
	if ls.NonZero != 4 || ls.AboveTen != 2 {
		t.Fatalf("%+v", ls)
	}
	if len(ls.Histogram) != 11 {
		t.Fatalf("histogram len %d", len(ls.Histogram))
	}
	if ls.Histogram[0] != 2 || ls.Histogram[1] != 1 || ls.Histogram[5] != 1 || ls.Histogram[10] != 2 {
		t.Fatalf("histogram %v", ls.Histogram)
	}
	if math.Abs(ls.Mean-7) > 1e-9 {
		t.Fatalf("mean %v", ls.Mean)
	}
}

func TestCountAboveAndMaxInt(t *testing.T) {
	xs := []int{1, 11, 12, 3}
	if CountAbove(xs, 10) != 2 {
		t.Fatal("CountAbove")
	}
	if MaxInt(xs) != 12 {
		t.Fatal("MaxInt")
	}
	if MaxInt(nil) != 0 {
		t.Fatal("MaxInt empty")
	}
}

func TestRow(t *testing.T) {
	if got := Row("mot", 1.0, 2.5); got != "mot\t1.000\t2.500" {
		t.Fatalf("Row = %q", got)
	}
}

// Property: Min <= P50 <= P95 <= Max and Mean within [Min, Max].
func TestQuickSummaryOrdering(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				// Keep magnitudes bounded so the mean cannot overflow.
				clean = append(clean, math.Mod(x, 1e6))
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		return s.Min <= s.P50 && s.P50 <= s.P95 && s.P95 <= s.Max &&
			s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
