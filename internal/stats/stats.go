// Package stats provides the summary statistics and load-distribution
// helpers the experiment harnesses use to report the paper's figures.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary describes a sample of float64 values.
type Summary struct {
	N                  int
	Mean, Std          float64
	Min, P50, P95, Max float64
}

// Summarize computes a Summary; the zero Summary is returned for an empty
// sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs)}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	s.P50 = Percentile(sorted, 50)
	s.P95 = Percentile(sorted, 95)
	sum := 0.0
	for _, x := range sorted {
		sum += x
	}
	s.Mean = sum / float64(len(sorted))
	if len(sorted) > 1 {
		ss := 0.0
		for _, x := range sorted {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(sorted)-1))
	}
	return s
}

// Percentile returns the p-th percentile (0..100) of an ascending-sorted
// sample using linear interpolation.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean (0 for an empty sample).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// LoadStats summarizes an integer per-node load vector, mirroring the
// load/node comparisons of Figs. 8–11 ("k nodes with load > 10").
type LoadStats struct {
	Nodes     int
	Total     int
	Max       int
	Mean      float64
	NonZero   int
	AboveTen  int // nodes with load > 10, the paper's headline statistic
	Histogram []int
}

// SummarizeLoad computes LoadStats over a per-node load vector. The
// histogram buckets by load value 0,1,2,...,maxBucket with the final bucket
// absorbing everything larger.
func SummarizeLoad(load []int, maxBucket int) LoadStats {
	if maxBucket < 1 {
		maxBucket = 1
	}
	ls := LoadStats{Nodes: len(load), Histogram: make([]int, maxBucket+1)}
	for _, c := range load {
		ls.Total += c
		if c > ls.Max {
			ls.Max = c
		}
		if c > 0 {
			ls.NonZero++
		}
		if c > 10 {
			ls.AboveTen++
		}
		b := c
		if b > maxBucket {
			b = maxBucket
		}
		ls.Histogram[b]++
	}
	if len(load) > 0 {
		ls.Mean = float64(ls.Total) / float64(len(load))
	}
	return ls
}

// CountAbove returns how many entries exceed the threshold.
func CountAbove(load []int, threshold int) int {
	c := 0
	for _, x := range load {
		if x > threshold {
			c++
		}
	}
	return c
}

// MaxInt returns the maximum entry (0 for an empty slice).
func MaxInt(xs []int) int {
	m := 0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Row renders a fixed set of float columns for the tabular experiment
// output, e.g. Row("mot", 1.23, 4.56) -> "mot\t1.230\t4.560".
func Row(label string, cols ...float64) string {
	parts := []string{label}
	for _, c := range cols {
		parts = append(parts, fmt.Sprintf("%.3f", c))
	}
	return strings.Join(parts, "\t")
}
