package mot

import (
	"io"

	"repro/internal/experiments"
	"repro/internal/mobility"
	"repro/internal/sim"
)

// MobilityModel selects how workload objects move.
type MobilityModel = mobility.Model

// Mobility models.
const (
	// RandomWalk moves an object to a uniformly random adjacent sensor.
	RandomWalk = mobility.RandomWalk
	// RandomWaypoint walks shortest paths to random destinations.
	RandomWaypoint = mobility.RandomWaypoint
)

// WorkloadConfig parameterizes workload generation (the paper's §8
// setting: m objects, a fixed number of maintenance operations per object
// interleaved in random order, plus queries from random sensors).
type WorkloadConfig struct {
	Objects        int
	MovesPerObject int
	Queries        int
	Model          MobilityModel
	Seed           int64
	// QueryRadius localizes queries around each object's final position
	// (0 = uniform requesters, the paper's setting).
	QueryRadius float64
}

// GenerateWorkload builds a reproducible workload over g.
func GenerateWorkload(g *Graph, m *Metric, cfg WorkloadConfig) (*Workload, error) {
	return mobility.Generate(g, m, mobility.Config(cfg))
}

// DetectionRates extracts the per-edge crossing frequencies of a workload —
// the traffic knowledge consumed by the STUN and Z-DAT constructions (MOT,
// being traffic-oblivious, never sees it).
func DetectionRates(w *Workload, g *Graph) EdgeRates {
	return w.DetectionRates(g)
}

// Replay drives a full workload through a directory one-by-one: publish
// every object, apply every move, then issue every query. It returns the
// directory's meter afterwards.
func Replay(d Directory, w *Workload) (CostMeter, error) {
	for o, at := range w.Initial {
		if err := d.Publish(ObjectID(o), at); err != nil {
			return CostMeter{}, err
		}
	}
	for _, mv := range w.Moves {
		if err := d.Move(mv.Object, mv.To); err != nil {
			return CostMeter{}, err
		}
	}
	for _, q := range w.Queries {
		if _, _, err := d.Query(q.From, q.Object); err != nil {
			return CostMeter{}, err
		}
	}
	return d.Meter(), nil
}

// ConcurrentOptions parameterizes a concurrent (discrete-event) MOT run.
type ConcurrentOptions struct {
	// Seed drives the overlay and schedule.
	Seed int64
	// Concurrency is the per-object operation burst size (the paper
	// fixes 10).
	Concurrency int
	// SpecialParentOffset as in Options.
	SpecialParentOffset int
	// PeriodSync gates level crossings at the §4.1.2 period boundaries.
	PeriodSync bool
}

// ConcurrentResult reports a concurrent MOT simulation.
type ConcurrentResult struct {
	Meter   CostMeter
	Queries []QueryResult
}

// RunConcurrent simulates the workload on MOT with concurrent operations
// (bursts of Concurrency maintenance operations per object; queries
// overlap maintenance and chase moving objects). The simulation is
// deterministic given the seed and validates directory invariants at
// quiescence.
func RunConcurrent(g *Graph, w *Workload, opt ConcurrentOptions) (*ConcurrentResult, error) {
	m := NewMetric(g)
	tr, err := newConcurrentSim(g, m, opt)
	if err != nil {
		return nil, err
	}
	if _, err := sim.Schedule(tr.s, w, sim.DriverConfig{
		Concurrency: opt.Concurrency,
		Diameter:    m.Diameter(),
		Seed:        opt.Seed,
	}); err != nil {
		return nil, err
	}
	if err := tr.eng.Run(); err != nil {
		return nil, err
	}
	if err := tr.s.CheckInvariants(); err != nil {
		return nil, err
	}
	return &ConcurrentResult{Meter: tr.s.Meter(), Queries: tr.s.Results()}, nil
}

type concurrentSim struct {
	s   *sim.MOTSim
	eng *sim.Engine
}

func newConcurrentSim(g *Graph, m *Metric, opt ConcurrentOptions) (*concurrentSim, error) {
	sigma := opt.SpecialParentOffset
	if sigma == 0 {
		sigma = 2
	}
	hs, err := buildSimpleOverlay(g, m, opt.Seed, sigma)
	if err != nil {
		return nil, err
	}
	eng := sim.NewEngine(0)
	s, err := sim.NewMOT(hs, eng, sim.Config{PeriodSync: opt.PeriodSync})
	if err != nil {
		return nil, err
	}
	return &concurrentSim{s: s, eng: eng}, nil
}

// RunFigure regenerates one of the paper's evaluation figures (4–15),
// writing its series to w. Scale in (0, 1] shrinks the workload (1 is the
// paper's full setting; small scales finish in seconds).
func RunFigure(id int, scale float64, w io.Writer) error {
	figs := experiments.Figures(scale)
	f, ok := figs[id]
	if !ok {
		return errUnknownFigure(id)
	}
	return f.Run(w)
}

// FigureIDs lists the reproducible figure numbers.
func FigureIDs() []int {
	return experiments.FigureIDs(experiments.Figures(1))
}
