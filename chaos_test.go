package mot

import (
	"errors"
	"math/rand"
	"testing"
)

// chaosTracker builds a tracker with a moved-around population of objects.
func chaosTracker(t *testing.T, opt Options) (*Tracker, *Graph, []NodeID) {
	t.Helper()
	g := Grid(7, 7)
	tr, err := NewTracker(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	locs := make([]NodeID, 4)
	for o := range locs {
		locs[o] = NodeID(rng.Intn(g.N()))
		if err := tr.Publish(ObjectID(o), locs[o]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 40; i++ {
		o := rng.Intn(len(locs))
		nbrs := g.NeighborIDs(locs[o])
		locs[o] = nbrs[rng.Intn(len(nbrs))]
		if err := tr.Move(ObjectID(o), locs[o]); err != nil {
			t.Fatal(err)
		}
	}
	return tr, g, locs
}

// Failing the root station's host damages every trail; recovering it must
// repair them all through the fine-grained §7 path, restore query
// correctness, and charge the walks to RecoveryCost.
func TestChaosFailRecoverRepairsTrails(t *testing.T) {
	tr, g, locs := chaosTracker(t, Options{Seed: 1, SpecialParentOffset: 2})
	root := tr.RootNode()
	if err := tr.FailNode(root); err != nil {
		t.Fatal(err)
	}
	if err := tr.FailNode(root); err != nil {
		t.Fatalf("re-failing a failed node must be a no-op, got %v", err)
	}
	if got := tr.FailedNodes(); len(got) != 1 || got[0] != root {
		t.Fatalf("FailedNodes = %v, want [%d]", got, root)
	}
	// The root entry of every trail is gone: the damage is observable.
	if err := tr.CheckInvariants(); err == nil {
		t.Fatal("invariants still hold after dropping the root host")
	}
	if err := tr.RecoverNode(root); err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants after recovery: %v", err)
	}
	for o, want := range locs {
		got, _, err := tr.Query(NodeID((o*13)%g.N()), ObjectID(o))
		if err != nil || got != want {
			t.Fatalf("object %d after recovery: proxy %d err %v, want %d", o, got, err, want)
		}
	}
	m := tr.Meter()
	if m.RecoveryOps == 0 || m.RecoveryCost <= 0 {
		t.Fatalf("repairs not metered: %d ops, cost %v", m.RecoveryOps, m.RecoveryCost)
	}
	if len(tr.FailedNodes()) != 0 {
		t.Fatalf("failed set not cleared: %v", tr.FailedNodes())
	}
}

// Healing waits for the whole network: with two nodes down, recovering one
// repairs nothing; recovering the second repairs everything.
func TestChaosRecoveryWaitsForWholeNetwork(t *testing.T) {
	tr, _, _ := chaosTracker(t, Options{Seed: 2, SpecialParentOffset: 2})
	root := tr.RootNode()
	other := NodeID((int(root) + 1) % tr.Graph().N())
	if err := tr.FailNode(root); err != nil {
		t.Fatal(err)
	}
	if err := tr.FailNode(other); err != nil {
		t.Fatal(err)
	}
	if err := tr.RecoverNode(root); err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckInvariants(); err == nil {
		t.Fatal("directory healed while a node is still down")
	}
	if err := tr.RecoverNode(other); err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants after full recovery: %v", err)
	}
}

// Past the churn threshold, recovery falls back to the coarse §7 path — a
// full Migrate-style rebuild — and carries the meter over.
func TestChaosChurnThresholdTriggersRebuild(t *testing.T) {
	tr, g, locs := chaosTracker(t, Options{
		Seed: 3, SpecialParentOffset: 2,
		Chaos: &ChaosConfig{ChurnThreshold: 0.01}, // one failure tips it
	})
	before := tr.Meter()
	root := tr.RootNode()
	if err := tr.FailNode(root); err != nil {
		t.Fatal(err)
	}
	if err := tr.RecoverNode(root); err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants after rebuild: %v", err)
	}
	for o, want := range locs {
		got, _, err := tr.Query(NodeID((o*17)%g.N()), ObjectID(o))
		if err != nil || got != want {
			t.Fatalf("object %d after rebuild: proxy %d err %v, want %d", o, got, err, want)
		}
	}
	after := tr.Meter()
	if after.PublishCost < before.PublishCost || after.MaintCost < before.MaintCost {
		t.Fatalf("rebuild lost accumulated costs: before %+v after %+v", before, after)
	}
}

// Validation: out-of-range failures are rejected, recovering a healthy
// node errors, and Unpublish retires an object (even a damaged one).
func TestChaosFailRecoverValidation(t *testing.T) {
	tr, g, _ := chaosTracker(t, Options{Seed: 4, SpecialParentOffset: 2})
	if err := tr.FailNode(NodeID(g.N())); err == nil {
		t.Fatal("out-of-range FailNode accepted")
	}
	if err := tr.FailNode(-1); err == nil {
		t.Fatal("negative FailNode accepted")
	}
	if err := tr.RecoverNode(0); err != nil {
		t.Fatalf("recovering a healthy node must be a no-op, got: %v", err)
	}
	if err := tr.RecoverNode(-1); err == nil {
		t.Fatal("negative RecoverNode accepted")
	}
	if err := tr.Unpublish(99); err == nil {
		t.Fatal("unpublishing an unknown object accepted")
	}

	// Retire object 0 while it is damaged: recovery must skip it.
	root := tr.RootNode()
	if err := tr.FailNode(root); err != nil {
		t.Fatal(err)
	}
	if err := tr.Unpublish(0); err != nil {
		t.Fatal(err)
	}
	if err := tr.RecoverNode(root); err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tr.Query(0, 0); err == nil {
		t.Fatal("query answered for an unpublished object")
	}
	if objs := tr.Objects(); len(objs) != 3 {
		t.Fatalf("objects after unpublish: %v", objs)
	}
	// A retired object can be introduced again from scratch.
	if err := tr.Publish(0, 5); err != nil {
		t.Fatal(err)
	}
	if got, _, err := tr.Query(40, 0); err != nil || got != 5 {
		t.Fatalf("re-published object: proxy %d err %v", got, err)
	}
}

// The distributed facade under Options.Chaos: drop/delay faults replay
// deterministically, and explicit Crash/Recover surfaces typed delivery
// errors while down and works again once back up.
func TestChaosDistributedFaults(t *testing.T) {
	g := Grid(6, 6)
	run := func() (string, float64) {
		d, err := NewDistributed(g, Options{
			Seed: 1, SpecialParentOffset: 2,
			Chaos: &ChaosConfig{Seed: 5, DropRate: 0.3, DelayRate: 0.3, MaxAttempts: 10},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		if err := d.Publish(1, 0); err != nil {
			t.Fatal(err)
		}
		for i := 1; i <= 8; i++ {
			if err := d.Move(1, NodeID((i*5)%g.N())); err != nil {
				t.Fatal(err)
			}
		}
		if got, _, err := d.Query(35, 1); err != nil || got != 4 {
			t.Fatalf("query under chaos: proxy %d err %v", got, err)
		}
		return d.FaultTrace().Render(), d.SimulatedDelay()
	}
	t1, d1 := run()
	if t1 == "" || d1 <= 0 {
		t.Fatalf("no faults injected (trace %q, delay %v)", t1, d1)
	}
	t2, d2 := run()
	if t1 != t2 || d1 != d2 {
		t.Fatal("distributed chaos did not replay byte-identically")
	}

	// Crash the whole network: the next operation fails typed, not hung.
	d, err := NewDistributed(g, Options{
		Seed: 1, SpecialParentOffset: 2, Chaos: &ChaosConfig{Seed: 6, MaxAttempts: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Publish(1, 12); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < g.N(); n++ {
		d.Crash(NodeID(n))
	}
	var de *DeliveryError
	if err := d.Move(1, 3); !errors.As(err, &de) {
		t.Fatalf("move through crashed network returned %v, want *DeliveryError", err)
	}
	for n := 0; n < g.N(); n++ {
		d.Recover(NodeID(n))
	}
	if err := d.Publish(2, 20); err != nil {
		t.Fatalf("publish after recovery: %v", err)
	}
	if got, _, err := d.Query(0, 2); err != nil || got != 20 {
		t.Fatalf("query after recovery: proxy %d err %v", got, err)
	}
}
