package mot

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/dynamics"
	"repro/internal/graph"
	"repro/internal/hier"
	"repro/internal/lb"
	"repro/internal/overlay"
	"repro/internal/partition"
)

// Options configures a Tracker.
type Options struct {
	// Seed drives the randomized overlay construction (Luby's MIS);
	// equal seeds over equal graphs give identical hierarchies.
	Seed int64
	// GeneralOverlay builds the §6 sparse-partition hierarchy instead of
	// the constant-doubling HS — use it for topologies without a small
	// doubling dimension.
	GeneralOverlay bool
	// UseParentSets makes operations probe every parent-set station per
	// level (§3.1) instead of only the default-parent chain. It buys the
	// Lemma 2.1 meeting levels at a constant-factor cost increase.
	UseParentSets bool
	// SpecialParentOffset is sigma of Definition 3: special parents sit
	// sigma levels above their registrants. 0 derives the theoretical
	// value; negative disables special parents; experiments use 2.
	SpecialParentOffset int
	// LoadBalance enables §5: directory entries hash across each
	// station's cluster over an embedded de Bruijn graph, bounding the
	// per-node load at an O(log n) routing surcharge (Corollary 5.2).
	LoadBalance bool
	// CountSpecialParentCost folds SDL maintenance messages into the
	// maintenance cost (the paper reports them separately).
	CountSpecialParentCost bool
	// CountLBRouteCost folds the load-balancing routing surcharge into
	// operation costs (Corollary 5.2 pricing); by default it is metered
	// separately in CostMeter.LBRouteCost, mirroring the paper's
	// treatment of auxiliary traffic.
	CountLBRouteCost bool
	// CountReply adds the result-return message to query costs.
	CountReply bool
	// IncrementalRepair keeps the HS hierarchy live under churn: FailNode
	// excludes the sensor and re-elects the surrounding overlay locally
	// (hier.Repair) instead of waiting for RecoverNode, then re-stamps
	// only the trails the event broke, so tracking stays available while
	// nodes are down. Past ChurnThreshold the coarse §7 fallback still
	// rebuilds from scratch. Requires the HS overlay: it conflicts with
	// GeneralOverlay and with LoadBalance placement.
	IncrementalRepair bool
	// Chaos enables deterministic fault injection. On a Distributed
	// tracker it installs drop/delay faults on every message (crashes are
	// driven explicitly via Crash/Recover); on the sequential Tracker,
	// whose operations are instantaneous, it configures the recovery
	// policy (ChurnThreshold) for FailNode/RecoverNode. Nil disables
	// faults entirely.
	Chaos *ChaosConfig
	// Obs receives a span per operation plus per-node and per-level
	// metrics (see internal/obs). Nil — the default — disables
	// observability; instrumented paths then cost one pointer test.
	// Exports are deterministic: see NewRecorder and the Write* methods.
	Obs *Recorder
}

// Tracker is the public handle to a MOT directory over a sensor network:
// it owns the overlay hierarchy and the detection-list state and meters
// every operation's communication cost.
type Tracker struct {
	g   *Graph
	m   *Metric // exact metric when built through NewTracker[WithMetric], else nil
	dm  graph.DistanceOracle
	ov  overlay.Overlay
	dir *core.Directory

	// eng is the §7 incremental churn engine under
	// Options.IncrementalRepair (it owns ov and dir then); nil otherwise.
	eng *dynamics.Engine

	// opt and cfg are retained for the §7 rebuild fallback (dynamics.go).
	opt Options
	cfg core.Config

	// chaosMu guards the fault-recovery bookkeeping in dynamics.go.
	chaosMu sync.Mutex
	failed  map[NodeID]bool
	damaged map[ObjectID]bool
	churn   int
}

// NewTracker builds the overlay over g (which must be connected) and an
// empty directory on top of it.
func NewTracker(g *Graph, opt Options) (*Tracker, error) {
	m := graph.NewMetric(g)
	return NewTrackerWithMetric(g, m, opt)
}

// NewTrackerWithMetric is NewTracker reusing an existing metric oracle
// (useful when several trackers share one network).
func NewTrackerWithMetric(g *Graph, m *Metric, opt Options) (*Tracker, error) {
	t, err := NewTrackerWithOracle(g, m, opt)
	if err != nil {
		return nil, err
	}
	t.m = m
	return t, nil
}

// hierConfig maps the facade options onto the HS overlay configuration.
func hierConfig(opt Options) hier.Config {
	return hier.Config{
		Seed:                opt.Seed,
		UseParentSets:       opt.UseParentSets,
		SpecialParentOffset: opt.SpecialParentOffset,
		Incremental:         opt.IncrementalRepair,
	}
}

// NewTrackerWithOracle builds the tracker over any routing-grade distance
// oracle — e.g. graph.NewOracle's sub-quadratic substrate for networks
// where the O(n²) exact metric is unaffordable. Metric() returns nil on
// such trackers; everything else behaves identically.
func NewTrackerWithOracle(g *Graph, dm graph.DistanceOracle, opt Options) (*Tracker, error) {
	cfg := core.Config{
		CountSpecialParentCost: opt.CountSpecialParentCost,
		CountLBRouteCost:       opt.CountLBRouteCost,
		CountReply:             opt.CountReply,
		Obs:                    opt.Obs,
	}
	if opt.IncrementalRepair {
		if opt.GeneralOverlay {
			return nil, fmt.Errorf("mot: IncrementalRepair requires the HS overlay; it conflicts with GeneralOverlay")
		}
		if opt.LoadBalance {
			return nil, fmt.Errorf("mot: IncrementalRepair does not compose with LoadBalance placement")
		}
		ecfg := dynamics.Config{Hier: hierConfig(opt), Core: cfg}
		if opt.Chaos != nil {
			ecfg.ChurnThreshold = opt.Chaos.ChurnThreshold
			ecfg.RebuildEachEvent = opt.Chaos.RebuildEachEvent
		}
		eng, err := dynamics.New(g, dm, ecfg)
		if err != nil {
			return nil, fmt.Errorf("mot: building HS overlay: %w", err)
		}
		return &Tracker{g: g, dm: dm, ov: eng.Overlay(), eng: eng, dir: eng.Directory(), opt: opt, cfg: cfg}, nil
	}
	var ov overlay.Overlay
	if opt.GeneralOverlay {
		hs, err := partition.Build(g, dm, partition.Config{SpecialParentOffset: opt.SpecialParentOffset})
		if err != nil {
			return nil, fmt.Errorf("mot: building sparse-partition overlay: %w", err)
		}
		ov = hs
	} else {
		hs, err := hier.BuildExcluding(g, dm, hierConfig(opt), nil)
		if err != nil {
			return nil, fmt.Errorf("mot: building HS overlay: %w", err)
		}
		ov = hs
	}
	if opt.LoadBalance {
		cfg.Placement = lb.New(ov)
	}
	return &Tracker{g: g, dm: dm, ov: ov, dir: core.New(ov, cfg), opt: opt, cfg: cfg}, nil
}

// Graph returns the underlying network.
func (t *Tracker) Graph() *Graph { return t.g }

// Metric returns the exact shortest-path oracle, or nil when the tracker
// was built over an approximate substrate via NewTrackerWithOracle.
func (t *Tracker) Metric() *Metric { return t.m }

// Publish introduces object o at sensor node at; each object is published
// exactly once, before any Move or Query for it.
func (t *Tracker) Publish(o ObjectID, at NodeID) error { return t.dir.Publish(o, at) }

// Move records that object o moved to sensor node to, updating the
// detection trails (a maintenance operation). Moving to the current proxy
// is a free no-op.
func (t *Tracker) Move(o ObjectID, to NodeID) error { return t.dir.Move(o, to) }

// Query locates object o from sensor node from; it returns the proxy node
// currently detecting o and the communication cost of the search.
func (t *Tracker) Query(from NodeID, o ObjectID) (NodeID, float64, error) {
	return t.dir.Query(from, o)
}

// Location returns o's current proxy without any communication.
func (t *Tracker) Location(o ObjectID) (NodeID, bool) { return t.dir.Location(o) }

// Objects lists all published objects.
func (t *Tracker) Objects() []ObjectID { return t.dir.Objects() }

// Meter returns a snapshot of the accumulated cost counters.
func (t *Tracker) Meter() CostMeter { return t.dir.Meter() }

// ResetMeter zeroes the cost counters (e.g. after a warmup phase).
func (t *Tracker) ResetMeter() { t.dir.ResetMeter() }

// LoadByNode returns each sensor's storage load (detection-list entries,
// SDL entries, and proxied objects) under the configured placement — the
// §5 load metric.
func (t *Tracker) LoadByNode() []int { return t.dir.LoadByNode(t.g.N()) }

// CheckInvariants validates the directory's global consistency (tests and
// long-running deployments can call it at quiescent points).
func (t *Tracker) CheckInvariants() error { return t.dir.CheckInvariants() }

// ObserveLoad snapshots the current per-node storage load into the
// tracker's recorder (Options.Obs) as the node.entries series; a no-op
// without a recorder.
func (t *Tracker) ObserveLoad() { t.dir.ObserveLoad(t.g.N()) }

// OverlayHeight returns the number of levels (h) of the built hierarchy.
func (t *Tracker) OverlayHeight() int { return t.ov.Height() }

// RootNode returns the physical sensor hosting the hierarchy root (the
// sink in a real deployment).
func (t *Tracker) RootNode() NodeID { return t.ov.Root().Host }
