// Package mot is a Go implementation of MOT — "Mobile Object Tracking
// using Sensors" — the distributed, traffic-oblivious, load-balanced
// location-tracking algorithm of Sharma, Krishnan, Busch, and Brandt
// ("Near-Optimal Location Tracking Using Sensor Networks", IPDPS workshops
// 2014 / IJNC 2015), together with every substrate its evaluation needs:
//
//   - the hierarchical overlay HS over constant-doubling sensor networks
//     (nested maximal independent sets, parent sets, detection paths,
//     special parents) and the (O(log n), O(log n)) sparse-partition
//     overlay for general networks;
//   - the MOT directory (detection lists / special detection lists with
//     publish, maintenance, and query operations) with exact
//     communication-cost metering against the optimal costs;
//   - §5 load balancing (per-cluster de Bruijn embeddings with hashed
//     entry placement) and §7 dynamics (cluster join/leave);
//   - the traffic-conscious baselines the paper compares against — STUN
//     (Kung & Vlah) and Z-DAT with and without shortcuts (Lin et al.) —
//     on a shared message-pruning tree engine;
//   - a discrete-event simulator for concurrent executions, a live
//     goroutine-per-node runtime, and harnesses that regenerate every
//     figure of the paper's evaluation (Figs. 4–15).
//
// Quickstart:
//
//	g := mot.Grid(16, 16)
//	tr, err := mot.NewTracker(g, mot.Options{Seed: 1})
//	if err != nil { ... }
//	tr.Publish(1, 0)        // object 1 appears at sensor 0
//	tr.Move(1, 16)          // it moves to an adjacent sensor
//	proxy, cost, err := tr.Query(255, 1)
//
// See DESIGN.md for the system inventory and the per-figure experiment
// index, and EXPERIMENTS.md for reproduction results.
package mot

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mobility"
	"repro/internal/sim"
)

// NodeID identifies a sensor node (0..N-1).
type NodeID = graph.NodeID

// Undefined is the sentinel for "no node".
const Undefined = graph.Undefined

// ObjectID identifies a tracked mobile object.
type ObjectID = core.ObjectID

// Graph is the weighted sensor-network graph G = (V, E, w).
type Graph = graph.Graph

// Metric is a shortest-path distance oracle over a Graph.
type Metric = graph.Metric

// Point is a planar sensor position.
type Point = graph.Point

// CostMeter accumulates operation costs and optimal costs; see its methods
// MaintRatio, QueryRatio, MaintMeanRatio, and QueryMeanRatio.
type CostMeter = core.CostMeter

// Workload is a reproducible movement-and-query workload.
type Workload = mobility.Workload

// QueryResult records one completed query in a concurrent simulation.
type QueryResult = sim.QueryResult

// NewGraph returns an empty graph with n sensors; add edges with AddEdge.
func NewGraph(n int) *Graph { return graph.New(n) }

// Grid returns a w×h unit grid network, the paper's evaluation topology.
func Grid(w, h int) *Graph { return graph.Grid(w, h) }

// NearSquareGrid returns a grid with at least n sensors, as square as
// possible.
func NearSquareGrid(n int) *Graph { return graph.NearSquareGrid(n) }

// Ring returns an n-cycle — the topology where spanning-tree trackers pay
// Θ(D) cost ratios.
func Ring(n int) *Graph { return graph.Ring(n) }

// NewMetric returns a lazy all-pairs shortest-path oracle for g; g must not
// be mutated afterwards.
func NewMetric(g *Graph) *Metric { return graph.NewMetric(g) }

// NewFrozenMetric returns the oracle with the full all-pairs table
// already computed and frozen: every subsequent Dist/Row/Ball read is
// lock-free and allocation-free, and the metric can be shared freely
// across goroutines (long-lived trackers and sweep harnesses want this;
// one-shot small-graph uses can stay lazy with NewMetric).
func NewFrozenMetric(g *Graph) *Metric {
	m := graph.NewMetric(g)
	m.Precompute(0)
	return m
}

// RandomGeometricGraph scatters n sensors uniformly over a side×side field
// and connects pairs within the radio radius (weights are Euclidean
// distances, normalized); it retries with a grown radius until connected.
func RandomGeometricGraph(n int, side, radius float64, rng *rand.Rand) *Graph {
	return graph.RandomGeometric(n, side, radius, rng)
}

// RandomTreeGraph returns a uniformly random labeled tree on n sensors with
// unit-weight links — a pathological general-network input (high doubling
// dimension at the root).
func RandomTreeGraph(n int, rng *rand.Rand) *Graph {
	return graph.RandomTree(n, rng)
}
