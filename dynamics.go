package mot

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Dynamic topology (§7): sensors fail and recover while tracking
// continues. Two regimes share this file.
//
// Legacy regime (IncrementalRepair off): FailNode only records damage;
// the directory heals when the last failed node recovers — per-object
// trail re-stamps below the churn threshold, a Migrate-style rebuild
// above it. Queries touching broken trails fail while nodes are down.
//
// Incremental regime (Options.IncrementalRepair): every FailNode and
// RecoverNode is handled immediately by the internal/dynamics engine —
// hier.Repair re-runs the deterministic greedy MIS only where liveness
// changed, landing on the exact hierarchy a from-scratch rebuild of the
// live set would produce, then precisely the trails the event broke are
// re-stamped. Tracking stays available throughout. Past ChurnThreshold ×
// N cumulative failures the coarse fallback rebuilds overlay and
// directory from scratch over the live set, parking objects whose proxy
// is down until it returns.

// Migrate rebuilds tracking on a changed network — §7's coarse mechanism:
// fine-grained churn inside clusters is absorbed by the de Bruijn
// relabeling with amortized O(1) updates (internal/debruijn), and "after
// the threshold, the hierarchy can be rebuilt from scratch". Migrate
// constructs a fresh tracker over newG and republishes every object of old
// at relocate(oldProxy) (identity when relocate is nil and the proxy still
// exists in newG).
func Migrate(old *Tracker, newG *Graph, opt Options, relocate func(NodeID) NodeID) (*Tracker, error) {
	fresh, err := NewTracker(newG, opt)
	if err != nil {
		return nil, err
	}
	for _, o := range old.Objects() {
		proxy, ok := old.Location(o)
		if !ok {
			continue
		}
		target := proxy
		if relocate != nil {
			target = relocate(proxy)
		}
		if int(target) < 0 || int(target) >= newG.N() {
			return nil, fmt.Errorf("mot: migrate: object %d relocated to invalid node %d", o, target)
		}
		if err := fresh.Publish(o, target); err != nil {
			return nil, fmt.Errorf("mot: migrate: %w", err)
		}
	}
	return fresh, nil
}

// adoptEngineLocked re-reads the engine's overlay and directory — a
// threshold rebuild replaces both. Caller holds chaosMu.
func (t *Tracker) adoptEngineLocked() {
	t.ov = t.eng.Overlay()
	t.dir = t.eng.Directory()
}

// FailNode models the crash of sensor n: every directory entry stored at
// its stations is lost and stale shortcuts into it are invalidated.
// Failing an already-failed node is a defined no-op. In the legacy regime
// the damage is only recorded (queries touching broken trails fail until
// RecoverNode); under Options.IncrementalRepair the overlay is repaired
// and broken trails re-stamped before FailNode returns, so tracking stays
// available while the node is down.
func (t *Tracker) FailNode(n NodeID) error {
	if int(n) < 0 || int(n) >= t.g.N() {
		return fmt.Errorf("mot: fail: node %d out of range [0,%d)", n, t.g.N())
	}
	t.chaosMu.Lock()
	defer t.chaosMu.Unlock()
	if t.eng != nil {
		if err := t.eng.Fail(graph.NodeID(n)); err != nil {
			return err
		}
		t.adoptEngineLocked()
		return nil
	}
	if t.failed == nil {
		t.failed = make(map[NodeID]bool)
	}
	if t.damaged == nil {
		t.damaged = make(map[ObjectID]bool)
	}
	if t.failed[n] {
		return nil
	}
	t.failed[n] = true
	t.churn++
	for _, o := range t.dir.DropHost(n) {
		t.damaged[o] = true
	}
	return nil
}

// RecoverNode brings sensor n back; recovering a node that is not failed
// is a defined no-op. In the legacy regime the directory heals only when
// the last failed node recovers: each damaged object's trail is
// re-stamped from its surviving ground-truth proxy (the fine-grained §7
// path, charged to CostMeter.RecoveryCost) — unless cumulative churn
// exceeded ChurnThreshold × N, in which case the whole hierarchy is
// rebuilt through Migrate (the coarse fallback) and the old meter carried
// over. Under Options.IncrementalRepair the node is readmitted into the
// overlay immediately, objects parked on it across a rebuild are
// re-introduced, and whatever the readmission perturbed is re-stamped.
func (t *Tracker) RecoverNode(n NodeID) error {
	if int(n) < 0 || int(n) >= t.g.N() {
		return fmt.Errorf("mot: recover: node %d out of range [0,%d)", n, t.g.N())
	}
	t.chaosMu.Lock()
	defer t.chaosMu.Unlock()
	if t.eng != nil {
		if err := t.eng.Recover(graph.NodeID(n)); err != nil {
			return err
		}
		t.adoptEngineLocked()
		return nil
	}
	if t.failed == nil || !t.failed[n] {
		return nil
	}
	delete(t.failed, n)
	if len(t.failed) > 0 {
		return nil // heal once the network is whole again
	}
	if float64(t.churn) > t.churnThreshold()*float64(t.g.N()) {
		return t.rebuildLocked()
	}
	objs := make([]ObjectID, 0, len(t.damaged))
	for o := range t.damaged {
		objs = append(objs, o)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })
	for _, o := range objs {
		if _, ok := t.dir.Location(o); !ok {
			continue // unpublished while damaged
		}
		if err := t.dir.Repair(o); err != nil {
			return fmt.Errorf("mot: recover: %w", err)
		}
	}
	t.damaged = make(map[ObjectID]bool)
	t.churn = 0
	return nil
}

// rebuildLocked is the coarse §7 fallback of the legacy regime: migrate
// onto a fresh hierarchy over the same network (identity relocation) and
// adopt it in place, preserving accumulated costs. Caller holds chaosMu.
func (t *Tracker) rebuildLocked() error {
	fresh, err := Migrate(t, t.g, t.opt, nil)
	if err != nil {
		return fmt.Errorf("mot: rebuild past churn threshold: %w", err)
	}
	fresh.dir.AbsorbMeter(t.dir.Meter())
	t.m, t.dm, t.ov, t.dir, t.cfg = fresh.m, fresh.dm, fresh.ov, fresh.dir, fresh.cfg
	t.damaged = make(map[ObjectID]bool)
	t.churn = 0
	return nil
}

// FailedNodes lists the currently failed sensors, sorted.
func (t *Tracker) FailedNodes() []NodeID {
	t.chaosMu.Lock()
	defer t.chaosMu.Unlock()
	if t.eng != nil {
		failed := t.eng.FailedNodes()
		out := make([]NodeID, len(failed))
		for i, n := range failed {
			out[i] = NodeID(n)
		}
		return out
	}
	out := make([]NodeID, 0, len(t.failed))
	for n := range t.failed {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ParkedObjects lists the objects currently stranded on a failed proxy
// across a coarse rebuild, sorted; they re-enter the directory when their
// node recovers. Always empty in the legacy regime.
func (t *Tracker) ParkedObjects() []ObjectID {
	t.chaosMu.Lock()
	defer t.chaosMu.Unlock()
	if t.eng == nil {
		return nil
	}
	return t.eng.ParkedObjects()
}

// Unpublish removes object o from tracking (the "object retired / sensor
// left" half of §7 dynamics); its trail is erased root to proxy.
// Re-introducing the object later is a fresh Publish.
func (t *Tracker) Unpublish(o ObjectID) error {
	t.chaosMu.Lock()
	defer t.chaosMu.Unlock()
	if t.eng != nil {
		return t.eng.Unpublish(o)
	}
	delete(t.damaged, o)
	return t.dir.Unpublish(o)
}
