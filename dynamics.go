package mot

import (
	"fmt"
)

// Migrate rebuilds tracking on a changed network — §7's coarse mechanism:
// fine-grained churn inside clusters is absorbed by the de Bruijn
// relabeling with amortized O(1) updates (internal/debruijn), and "after
// the threshold, the hierarchy can be rebuilt from scratch". Migrate
// constructs a fresh tracker over newG and republishes every object of old
// at relocate(oldProxy) (identity when relocate is nil and the proxy still
// exists in newG).
func Migrate(old *Tracker, newG *Graph, opt Options, relocate func(NodeID) NodeID) (*Tracker, error) {
	fresh, err := NewTracker(newG, opt)
	if err != nil {
		return nil, err
	}
	for _, o := range old.Objects() {
		proxy, ok := old.Location(o)
		if !ok {
			continue
		}
		target := proxy
		if relocate != nil {
			target = relocate(proxy)
		}
		if int(target) < 0 || int(target) >= newG.N() {
			return nil, fmt.Errorf("mot: migrate: object %d relocated to invalid node %d", o, target)
		}
		if err := fresh.Publish(o, target); err != nil {
			return nil, fmt.Errorf("mot: migrate: %w", err)
		}
	}
	return fresh, nil
}
