# Tier-1 verification for the MOT reproduction.
#
#   make check   — gofmt, vet, build, full test suite, -race smoke tier,
#                  then the motlint determinism/concurrency analyzer suite
#   make lint    — just motlint (internal/lint rules over every package)
#   make race    — just the -race smoke tier (parallel sweep harness,
#                  seed-stream splits, goroutine tracker + track.Group)
#   make bench   — the per-figure benchmarks plus the sweep-worker timing
#
# The -race tier is intentionally short: it runs only the tests that
# exercise real concurrency (TestRace*, TestParallel*, TestGolden*,
# TestStream*, TestConcurrent*) in the packages that own it, so the whole
# check stays CI-friendly.

GO ?= go

RACE_PKGS = ./internal/experiments ./internal/runtime ./internal/runtime/track ./internal/mobility
RACE_RUN  = 'TestRace|TestParallel|TestGolden|TestStream|TestConcurrent'

.PHONY: check fmt vet build test race lint bench

check: fmt vet build test race lint

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -run $(RACE_RUN) -timeout 5m $(RACE_PKGS)

lint:
	$(GO) run ./cmd/motlint ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .
