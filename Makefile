# Tier-1 verification for the MOT reproduction.
#
#   make check   — gofmt, vet, build, full test suite, -race smoke tier,
#                  the chaos fault-injection tier, then the motlint
#                  determinism/concurrency analyzer suite
#   make lint    — just motlint (internal/lint rules over every package);
#                  also writes motlint.sarif so CI can annotate PRs
#   make race    — just the -race smoke tier (parallel sweep harness,
#                  seed-stream splits, goroutine tracker + track.Group)
#   make chaos   — just the chaos tier: seeded crash/drop/delay schedules
#                  on both execution substrates under -race, with recovery
#                  invariants asserted at quiescence and golden fault-trace
#                  replay checks
#   make cover   — full-suite coverage, failing below COVER_MIN%
#   make bench   — every benchmark once (-benchtime=1x): the per-figure
#                  benches, the sweep-worker timing, and the observability
#                  nil-sink/enabled ablations; part of make check so the
#                  bench harnesses can never bit-rot
#   make churn   — the sustained-churn tier under -race: seeded
#                  fail/recover schedules on the incremental repair engine
#                  vs the rebuild baseline, the recovery SLO asserted
#                  after every epoch, plus the worker-count and
#                  repair-vs-rebuild byte-identity goldens and the core
#                  height-shrink regression
#   make scale   — the large-n smoke tier: one 10 000-node cost-ratio
#                  cell on the sub-quadratic distance oracle, asserting it
#                  never freezes an n×n table, plus the oracle/exact
#                  fallback golden, the sampled exact-metering audit, and
#                  the 10k churn cell (repair cost sublinear vs rebuild)
#   make soak    — the opt-in serving soak tier (not part of make check):
#                  ~60s of sustained mixed HTTP load plus a rolling chaos
#                  drill against a live motserve server, then a graceful
#                  drain with the service invariants asserted at
#                  quiescence (no lost acknowledged moves, empty queues,
#                  request p99 under the collapse SLO); MOT_SOAK_SECS
#                  shortens it locally
#   make bench-json — the perf-trajectory suite (frozen vs lazy metric
#                  reads, all-pairs precompute, substrate-cache on/off
#                  sweep throughput, oracle build/read vs exact, a 10k
#                  oracle scale cell, a churn cell with the
#                  repair-vs-rebuild ratio, the live-telemetry
#                  overhead pins: nil-sink allocs and runtime ops with
#                  live on vs off, and the motserve serving rows:
#                  publish/move/query ops through the sharded HTTP front
#                  end) written to BENCH_10.json; CI uploads the file as
#                  an artifact
#   make bench-gate — the CI regression gate: re-measure the suite into
#                  BENCH_current.json (never committed) and diff it
#                  against the committed BENCH_10.json baseline with
#                  cmd/benchdiff — >15% ns/op growth or any allocs/op
#                  growth on a pinned benchmark fails; benchdiff.md
#                  holds the delta table CI uploads
#
# The -race and chaos tiers are intentionally short: they run only the
# tests that exercise real concurrency and fault injection in the packages
# that own them, so the whole check stays CI-friendly.

GO ?= go

RACE_PKGS = ./internal/experiments ./internal/runtime ./internal/runtime/track ./internal/mobility ./internal/graph ./internal/serve
RACE_RUN  = 'TestRace|TestParallel|TestGolden|TestStream|TestConcurrent|TestOracle'

CHAOS_PKGS = ./internal/chaos ./internal/core ./internal/sim ./internal/runtime ./internal/experiments .
CHAOS_RUN  = 'TestChaos|TestGoldenChaos|TestRaceDoubleStop'

CHURN_PKGS = ./internal/hier ./internal/debruijn ./internal/core ./internal/experiments .
CHURN_RUN  = 'TestChurn|TestGoldenChurn|TestStaleObjects|TestHierRepair|TestExcludeReadmit|TestDynamicJoinLeave|TestQuickJoinLeave|TestIncremental|TestFailRecover|TestFailNode|TestRebuildEachEvent'

# Statement-coverage floor for `make cover` (the suite sits a few points
# above; raise the floor as coverage grows, never lower it to pass).
COVER_MIN = 79

.PHONY: check fmt vet build test race chaos churn scale soak lint cover bench bench-json bench-gate

check: fmt vet build test race chaos churn scale bench lint

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -run $(RACE_RUN) -timeout 5m $(RACE_PKGS)

chaos:
	$(GO) test -race -run $(CHAOS_RUN) -timeout 5m $(CHAOS_PKGS)

churn:
	$(GO) test -race -run $(CHURN_RUN) -timeout 10m $(CHURN_PKGS)

scale:
	$(GO) test -run 'TestScaleOracle|TestGoldenScaleOracle' -timeout 5m ./internal/experiments

soak:
	MOT_SOAK=1 $(GO) test -race -run TestSoakServe -timeout 10m -v ./internal/serve

lint:
	$(GO) run ./cmd/motlint -sarif motlint.sarif ./...

cover:
	$(GO) test -coverprofile=coverage.out ./...
	@$(GO) tool cover -func=coverage.out | tail -n 1
	@total=$$($(GO) tool cover -func=coverage.out | tail -n 1 | awk '{sub(/%/, "", $$3); print $$3}'); \
	ok=$$(awk -v t="$$total" -v min="$(COVER_MIN)" 'BEGIN { print (t >= min) ? 1 : 0 }'); \
	if [ "$$ok" != 1 ]; then \
		echo "coverage $$total% is below COVER_MIN=$(COVER_MIN)%"; exit 1; \
	fi

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

bench-json:
	$(GO) run ./cmd/motsim -benchjson BENCH_10.json

bench-gate:
	$(GO) run ./cmd/motsim -benchjson BENCH_current.json
	$(GO) run ./cmd/benchdiff -baseline BENCH_10.json -current BENCH_current.json -md benchdiff.md
