# Tier-1 verification for the MOT reproduction.
#
#   make check   — vet, build, full test suite, then the -race smoke tier
#   make race    — just the -race smoke tier (parallel sweep harness,
#                  seed-stream splits, goroutine tracker)
#   make bench   — the per-figure benchmarks plus the sweep-worker timing
#
# The -race tier is intentionally short: it runs only the tests that
# exercise real concurrency (TestRace*, TestParallel*, TestGolden*,
# TestStream*, TestConcurrent*) in the packages that own it, so the whole
# check stays CI-friendly.

GO ?= go

RACE_PKGS = ./internal/experiments ./internal/runtime ./internal/mobility
RACE_RUN  = 'TestRace|TestParallel|TestGolden|TestStream|TestConcurrent'

.PHONY: check vet build test race bench

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -run $(RACE_RUN) -timeout 5m $(RACE_PKGS)

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .
