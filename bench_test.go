package mot

// Benchmark harness: one benchmark per evaluation figure of the paper
// (Figs. 4–15), each regenerating a scaled-down instance of that figure's
// experiment and reporting the figure's headline metrics via b.ReportMetric
// (cost ratios as "<alg>:ratio", load statistics as "maxload"/"over10").
// Run the full-scale figures with cmd/motsim instead; these benches keep
// the regeneration path exercised and timed.
//
// The Ablation* benchmarks quantify the design choices DESIGN.md calls out:
// parent-set probing, special parents, load balancing's de Bruijn
// surcharge, and the concurrent period gate.

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/experiments"
)

// benchSizes keeps figure benches fast while spanning a 25x size range.
var benchSizes = []int{16, 100, 400}

// BenchmarkSweepWorkers times a Fig-4-style sweep at several worker-pool
// sizes. The harness guarantees byte-identical results for every pool
// size, so the only difference between sub-benchmarks is wall-clock; the
// parallel/sequential ratio is the harness's speedup on this machine.
func BenchmarkSweepWorkers(b *testing.B) {
	pools := []int{1}
	if p := runtime.GOMAXPROCS(0); p > 1 {
		pools = append(pools, p)
	} else {
		pools = append(pools, 4) // degenerate single-CPU box: show the overhead is negligible
	}
	for _, workers := range pools {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := experiments.CostRatioConfig{
				Sizes:          benchSizes,
				Objects:        20,
				MovesPerObject: 60,
				Queries:        60,
				Seeds:          2,
				LoadBalance:    true,
				Workers:        workers,
			}
			for i := 0; i < b.N; i++ {
				if _, err := experiments.RunCostRatio(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchCostFigure(b *testing.B, objects int, concurrent, query bool) {
	b.Helper()
	cfg := experiments.CostRatioConfig{
		Sizes:          benchSizes,
		Objects:        objects,
		MovesPerObject: 60,
		Queries:        60,
		Seeds:          1,
		Concurrent:     concurrent,
		LoadBalance:    true,
		Workers:        runtime.GOMAXPROCS(0),
	}
	var res *experiments.CostRatioResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunCostRatio(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := len(res.Sizes) - 1
	table := res.MaintenanceMean
	if query {
		table = res.QueryMean
	}
	for a, alg := range res.Algorithms {
		b.ReportMetric(table[a][last], alg+":ratio")
	}
}

func benchLoadFigure(b *testing.B, baseline string, movesPerObject int) {
	b.Helper()
	cfg := experiments.LoadConfig{
		Nodes:          256,
		Objects:        60,
		MovesPerObject: movesPerObject,
		Baseline:       baseline,
		Seed:           1,
	}
	var res *experiments.LoadResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunLoad(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.MOT.Max), "MOT:maxload")
	b.ReportMetric(float64(res.MOT.AboveTen), "MOT:over10")
	b.ReportMetric(float64(res.Baseline.Max), baseline+":maxload")
	b.ReportMetric(float64(res.Baseline.AboveTen), baseline+":over10")
}

// Fig. 4: maintenance cost ratio, one-by-one, 100 objects (scaled).
func BenchmarkFig04MaintenanceOneByOne100(b *testing.B) { benchCostFigure(b, 20, false, false) }

// Fig. 5: maintenance cost ratio, one-by-one, 1000 objects (scaled).
func BenchmarkFig05MaintenanceOneByOne1000(b *testing.B) { benchCostFigure(b, 60, false, false) }

// Fig. 6: query cost ratio, one-by-one, 100 objects (scaled).
func BenchmarkFig06QueryOneByOne100(b *testing.B) { benchCostFigure(b, 20, false, true) }

// Fig. 7: query cost ratio, one-by-one, 1000 objects (scaled).
func BenchmarkFig07QueryOneByOne1000(b *testing.B) { benchCostFigure(b, 60, false, true) }

// Fig. 8: load/node, MOT vs STUN, right after initialization.
func BenchmarkFig08LoadVsSTUNInit(b *testing.B) { benchLoadFigure(b, experiments.AlgSTUN, 0) }

// Fig. 9: load/node, MOT vs STUN, after 10 moves/object.
func BenchmarkFig09LoadVsSTUNMoves(b *testing.B) { benchLoadFigure(b, experiments.AlgSTUN, 10) }

// Fig. 10: load/node, MOT vs Z-DAT, right after initialization.
func BenchmarkFig10LoadVsZDATInit(b *testing.B) { benchLoadFigure(b, experiments.AlgZDAT, 0) }

// Fig. 11: load/node, MOT vs Z-DAT, after 10 moves/object.
func BenchmarkFig11LoadVsZDATMoves(b *testing.B) { benchLoadFigure(b, experiments.AlgZDAT, 10) }

// Fig. 12: maintenance cost ratio, concurrent, 100 objects (scaled).
func BenchmarkFig12MaintenanceConcurrent100(b *testing.B) { benchCostFigure(b, 20, true, false) }

// Fig. 13: maintenance cost ratio, concurrent, 1000 objects (scaled).
func BenchmarkFig13MaintenanceConcurrent1000(b *testing.B) { benchCostFigure(b, 60, true, false) }

// Fig. 14: query cost ratio, concurrent, 100 objects (scaled).
func BenchmarkFig14QueryConcurrent100(b *testing.B) { benchCostFigure(b, 20, true, true) }

// Fig. 15: query cost ratio, concurrent, 1000 objects (scaled).
func BenchmarkFig15QueryConcurrent1000(b *testing.B) { benchCostFigure(b, 60, true, true) }

// --- ablations ----------------------------------------------------------

// replayRatios runs a fixed workload through one tracker configuration and
// reports its mean ratios.
func ablate(b *testing.B, opt Options) {
	b.Helper()
	g := Grid(12, 12)
	m := NewMetric(g)
	w, err := GenerateWorkload(g, m, WorkloadConfig{Objects: 12, MovesPerObject: 80, Queries: 80, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	var meter CostMeter
	for i := 0; i < b.N; i++ {
		tr, err := NewTrackerWithMetric(g, m, opt)
		if err != nil {
			b.Fatal(err)
		}
		meter, err = Replay(tr, w)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(meter.MaintMeanRatio(), "maint:ratio")
	b.ReportMetric(meter.QueryMeanRatio(), "query:ratio")
	b.ReportMetric(meter.SpecialCost, "sdl:cost")
	b.ReportMetric(meter.LBRouteCost, "debruijn:cost")
}

// Baseline MOT configuration (simple paths, sigma=2, no load balancing).
func BenchmarkAblationBase(b *testing.B) {
	ablate(b, Options{Seed: 7, SpecialParentOffset: 2})
}

// Parent-set probing (§3.1): Lemma 2.1 meeting levels at a constant-factor
// cost increase.
func BenchmarkAblationParentSets(b *testing.B) {
	ablate(b, Options{Seed: 7, SpecialParentOffset: 2, UseParentSets: true})
}

// Special parents disabled: queries lose the fragmentation shortcut.
func BenchmarkAblationNoSpecialParents(b *testing.B) {
	ablate(b, Options{Seed: 7, SpecialParentOffset: -1})
}

// Load balancing (§5) with the surcharge metered separately (the default,
// figure-faithful accounting).
func BenchmarkAblationLoadBalance(b *testing.B) {
	ablate(b, Options{Seed: 7, SpecialParentOffset: 2, LoadBalance: true})
}

// Load balancing with the routing surcharge folded into operation costs —
// the Corollary 5.2 pricing.
func BenchmarkAblationLoadBalanceCounted(b *testing.B) {
	ablate(b, Options{Seed: 7, SpecialParentOffset: 2, LoadBalance: true, CountLBRouteCost: true})
}

// General-network overlay (§6) on the same grid.
func BenchmarkAblationGeneralOverlay(b *testing.B) {
	ablate(b, Options{GeneralOverlay: true, SpecialParentOffset: 2})
}

// Concurrent period gate (§4.1.2) on versus off.
func BenchmarkAblationPeriodSync(b *testing.B) {
	for _, on := range []bool{false, true} {
		name := "off"
		if on {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			g := Grid(10, 10)
			m := NewMetric(g)
			w, err := GenerateWorkload(g, m, WorkloadConfig{Objects: 8, MovesPerObject: 40, Queries: 40, Seed: 9})
			if err != nil {
				b.Fatal(err)
			}
			var res *ConcurrentResult
			for i := 0; i < b.N; i++ {
				res, err = RunConcurrent(g, w, ConcurrentOptions{Seed: 9, PeriodSync: on})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Meter.MaintMeanRatio(), "maint:ratio")
			b.ReportMetric(res.Meter.QueryMeanRatio(), "query:ratio")
		})
	}
}

// Observability off versus on over the same replay — the nil-sink
// ablation. "off" replays with Options.Obs nil, so every instrumented
// path costs one pointer test; "on" records a span per operation plus the
// per-node and per-level metrics. The off/on wall-clock delta is the full
// price of tracing, and the "off" time must stay within noise of the
// uninstrumented baseline above (BenchmarkAblationLoadBalance runs the
// identical configuration).
func BenchmarkAblationObservability(b *testing.B) {
	for _, on := range []bool{false, true} {
		name := "off"
		if on {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			g := Grid(12, 12)
			m := NewMetric(g)
			w, err := GenerateWorkload(g, m, WorkloadConfig{Objects: 12, MovesPerObject: 80, Queries: 80, Seed: 7})
			if err != nil {
				b.Fatal(err)
			}
			var rec *Recorder
			for i := 0; i < b.N; i++ {
				opt := Options{Seed: 7, SpecialParentOffset: 2, LoadBalance: true}
				if on {
					rec = NewRecorder("bench")
					opt.Obs = rec
				}
				tr, err := NewTrackerWithMetric(g, m, opt)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := Replay(tr, w); err != nil {
					b.Fatal(err)
				}
			}
			if on {
				b.ReportMetric(float64(rec.SpanCount()), "spans")
			}
		})
	}
}

// Substrate cache off versus on over the same small sweep — the
// cross-cell sharing ablation. "off" rebuilds the grid, all-pairs metric,
// and hierarchy for every (size, seed) cell; "on" (the default) shares
// one frozen substrate per topology. `make bench-json` measures the same
// pair with cells/sec on a larger grid for the CI artifact.
func BenchmarkAblationSubstrateCache(b *testing.B) {
	for _, off := range []bool{false, true} {
		name := "on"
		if off {
			name = "off"
		}
		b.Run(name, func(b *testing.B) {
			cfg := experiments.CostRatioConfig{
				Sizes:                 []int{100},
				Objects:               8,
				MovesPerObject:        30,
				Queries:               20,
				Seeds:                 3,
				LoadBalance:           true,
				Workers:               1,
				DisableSubstrateCache: off,
			}
			experiments.ResetSubstrateCache()
			for i := 0; i < b.N; i++ {
				if _, err := experiments.RunCostRatio(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Publish cost scales with the diameter (Theorem 4.1).
func BenchmarkPublishCost(b *testing.B) {
	g := Grid(20, 20)
	m := NewMetric(g)
	var meter CostMeter
	for i := 0; i < b.N; i++ {
		tr, err := NewTrackerWithMetric(g, m, Options{Seed: 3})
		if err != nil {
			b.Fatal(err)
		}
		for o := 0; o < 50; o++ {
			if err := tr.Publish(ObjectID(o), NodeID(o*7%g.N())); err != nil {
				b.Fatal(err)
			}
		}
		meter = tr.Meter()
	}
	b.ReportMetric(meter.PublishCost/float64(meter.PublishOps), "publish:cost/op")
}
