package mot

import (
	"fmt"

	"repro/internal/hier"
	"repro/internal/overlay"
)

// buildSimpleOverlay constructs the single-parent HS variant the concurrent
// simulator requires.
func buildSimpleOverlay(g *Graph, m *Metric, seed int64, sigma int) (overlay.Overlay, error) {
	hs, err := hier.Build(g, m, hier.Config{Seed: seed, SpecialParentOffset: sigma})
	if err != nil {
		return nil, fmt.Errorf("mot: building HS overlay: %w", err)
	}
	return hs, nil
}

func errUnknownFigure(id int) error {
	return fmt.Errorf("mot: unknown figure %d (the paper's evaluation figures are 4..15)", id)
}
