package mot

import (
	"io"

	"repro/internal/obs"
)

// Observability facade: re-exports of internal/obs so callers can record
// spans and metrics from any substrate (Tracker via Options.Obs,
// Distributed via the same option) and export them deterministically.

// Recorder collects spans and metrics for one run. A nil Recorder is a
// valid, fully disabled sink.
type Recorder = obs.Recorder

// ObsSnapshot is a deterministic point-in-time copy of a recorder's
// metrics registry.
type ObsSnapshot = obs.Snapshot

// NewRecorder returns an enabled recorder labeled label (the "run" column
// of every export).
func NewRecorder(label string) *Recorder { return obs.New(label) }

// WriteTraceJSONL writes the spans of the given recorders as JSON lines,
// sorted by logical identity — byte-deterministic for a deterministic
// workload.
func WriteTraceJSONL(w io.Writer, recs ...*Recorder) error {
	return obs.WriteJSONLAll(w, recs...)
}

// WriteMetricsCSV writes the recorders' metrics as one CSV
// (run,type,name,key,value).
func WriteMetricsCSV(w io.Writer, recs ...*Recorder) error {
	return obs.WriteMetricsCSVAll(w, recs...)
}

// WriteChromeTrace writes a Chrome trace-event JSON array covering the
// recorders — load it in Perfetto (ui.perfetto.dev) or chrome://tracing.
func WriteChromeTrace(w io.Writer, recs ...*Recorder) error {
	return obs.WriteChromeTrace(w, recs...)
}
